//! Reusable scratch-buffer arena threaded through forward/backward passes.
//!
//! Training touches the same layer stack thousands of times per client
//! (`clients × rounds × epochs × batches`), so per-call `Vec`/`Tensor`
//! allocations dominate the allocator. A [`Workspace`] amortizes them:
//!
//! * **Keyed slots** — persistent per-layer scratch (e.g. a convolution's
//!   im2col matrix) addressed by a [`SlotId`] minted once per layer
//!   instance. A slot survives between `take_slot`/`put_slot` pairs, so a
//!   forward pass can cache data in it and the matching backward pass can
//!   take it back without recomputing or cloning.
//! * **Recycle pool** — anonymous buffers for layer outputs and transient
//!   scratch. `alloc`/`tensor`/`tensor_zeroed` hand out the best-fitting
//!   retired buffer (grow-only: capacity is kept), and `recycle` returns a
//!   no-longer-needed tensor's storage to the pool.
//!
//! Buffers handed out by either path contain **stale garbage** unless
//! zeroed; callers must either fully overwrite them or request
//! [`Workspace::tensor_zeroed`]. This is load-bearing for determinism: the
//! GEMM kernels in [`crate::linalg`] accumulate into their output.
//!
//! [`Workspace::stats`] counts hand-outs that were served from existing
//! capacity (`reuses`) versus ones that had to touch the allocator
//! (`allocations`), so tests can assert a steady state allocates nothing.

use crate::{Shape, Tensor};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Stable identity of a persistent workspace slot.
///
/// Each layer instance mints its ids once at construction
/// ([`SlotId::fresh`]) and uses them for every subsequent call, so the
/// same buffer is rediscovered across batches, epochs, and rounds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SlotId(u64);

impl SlotId {
    /// Mint a process-unique slot id.
    pub fn fresh() -> Self {
        static NEXT: AtomicU64 = AtomicU64::new(1);
        SlotId(NEXT.fetch_add(1, Ordering::Relaxed))
    }
}

/// Allocation-behaviour counters for a [`Workspace`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkspaceStats {
    /// Hand-outs that required new heap capacity (fresh or grown buffer).
    pub allocations: u64,
    /// Hand-outs served entirely from already-owned capacity.
    pub reuses: u64,
    /// High-water mark of total f32 capacity owned by this workspace, in
    /// bytes (slots + pool + checked-out buffers).
    pub peak_bytes: u64,
}

/// Grow-only arena of reusable `f32` buffers. See the module docs.
///
/// A workspace is single-threaded by design (`&mut` threading); for
/// data-parallel regions, take one large buffer and `par_chunks_mut` it.
///
/// # Examples
///
/// Keyed-slot reuse — the second `take_slot` of the same [`SlotId`] hands
/// back the same storage with its contents intact, and the counters show
/// the steady state no longer touches the allocator:
///
/// ```
/// use fca_tensor::{SlotId, Workspace};
///
/// let mut ws = Workspace::new();
/// let id = SlotId::fresh();
///
/// let mut buf = ws.take_slot(id, 4); // first take: allocates
/// buf.copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
/// ws.put_slot(id, buf);
///
/// let buf = ws.take_slot(id, 4); // same storage, contents preserved
/// assert_eq!(buf, [1.0, 2.0, 3.0, 4.0]);
/// ws.put_slot(id, buf);
///
/// assert_eq!(ws.stats().allocations, 1);
/// assert_eq!(ws.stats().reuses, 1);
/// ```
///
/// Anonymous buffers flow through the recycle pool instead:
///
/// ```
/// use fca_tensor::Workspace;
///
/// let mut ws = Workspace::new();
/// let t = ws.tensor_zeroed([8, 8]);
/// ws.recycle(t); // retire the storage…
/// ws.reset_stats();
/// let _t2 = ws.tensor_zeroed([4, 16]); // …and the next request reuses it
/// assert_eq!(ws.stats().allocations, 0);
/// ```
#[derive(Debug, Default)]
pub struct Workspace {
    slots: HashMap<SlotId, Vec<f32>>,
    pool: Vec<Vec<f32>>,
    stats: WorkspaceStats,
    /// Total f32 capacity currently owned or checked out, in elements.
    live_elems: u64,
}

impl Workspace {
    /// Empty workspace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counters accumulated since construction (or the last [`Self::reset_stats`]).
    pub fn stats(&self) -> WorkspaceStats {
        self.stats
    }

    /// Zero the counters (capacity high-water mark included).
    pub fn reset_stats(&mut self) {
        self.stats = WorkspaceStats {
            peak_bytes: self.live_elems * 4,
            ..Default::default()
        };
    }

    fn note_capacity(&mut self, old_cap: usize, new_cap: usize) {
        if new_cap > old_cap {
            self.stats.allocations += 1;
            self.live_elems += (new_cap - old_cap) as u64;
            self.stats.peak_bytes = self.stats.peak_bytes.max(self.live_elems * 4);
        } else {
            self.stats.reuses += 1;
        }
    }

    /// Take the persistent buffer for `id`, resized to `len` (grow-only
    /// capacity). Contents beyond what the caller last wrote are
    /// unspecified. Pair with [`Self::put_slot`] to return it.
    pub fn take_slot(&mut self, id: SlotId, len: usize) -> Vec<f32> {
        let mut buf = self.slots.remove(&id).unwrap_or_default();
        let old_cap = buf.capacity();
        buf.resize(len, 0.0);
        self.note_capacity(old_cap, buf.capacity());
        buf
    }

    /// Return a slot buffer taken with [`Self::take_slot`]. The contents are
    /// preserved for the next `take_slot` of the same id.
    pub fn put_slot(&mut self, id: SlotId, buf: Vec<f32>) {
        self.slots.insert(id, buf);
    }

    /// Hand out an anonymous buffer of exactly `len` elements with
    /// **unspecified contents**, preferring the best-fitting retired buffer.
    pub fn alloc(&mut self, len: usize) -> Vec<f32> {
        // Best fit: smallest capacity >= len; else the largest (to grow).
        let mut best: Option<(usize, usize)> = None; // (index, capacity)
        for (i, b) in self.pool.iter().enumerate() {
            let cap = b.capacity();
            let fits = cap >= len;
            best = match best {
                None => Some((i, cap)),
                Some((_, bc)) if fits && (bc < len || cap < bc) => Some((i, cap)),
                Some((_, bc)) if !fits && bc < len && cap > bc => Some((i, cap)),
                keep => keep,
            };
        }
        let mut buf = match best {
            Some((i, _)) => self.pool.swap_remove(i),
            None => Vec::new(),
        };
        let old_cap = buf.capacity();
        buf.clear();
        buf.resize(len, 0.0);
        self.note_capacity(old_cap, buf.capacity());
        buf
    }

    /// Hand out a pair of anonymous buffers (e.g. GEMM packing scratch for
    /// the A and B operands) with **unspecified contents**. Equivalent to
    /// two [`Self::alloc`] calls; return both with [`Self::recycle_vec`] so
    /// the next GEMM in the step reuses them.
    pub fn alloc2(&mut self, len_a: usize, len_b: usize) -> (Vec<f32>, Vec<f32>) {
        let a = self.alloc(len_a);
        let b = self.alloc(len_b);
        (a, b)
    }

    /// An output tensor of `shape` with **unspecified contents** — the
    /// caller must fully overwrite every element.
    pub fn tensor(&mut self, shape: impl Into<Shape>) -> Tensor {
        let shape = shape.into();
        let buf = self.alloc(shape.numel());
        Tensor::from_vec(shape, buf)
    }

    /// An output tensor of `shape`, zero-filled (required before any
    /// accumulating kernel such as the GEMMs or `col2im`).
    pub fn tensor_zeroed(&mut self, shape: impl Into<Shape>) -> Tensor {
        let mut t = self.tensor(shape);
        t.data_mut().fill(0.0);
        t
    }

    /// A tensor with the same shape and contents as `src`, storage drawn
    /// from the pool.
    pub fn tensor_like(&mut self, src: &Tensor) -> Tensor {
        let mut t = self.tensor(src.shape().clone());
        t.data_mut().copy_from_slice(src.data());
        t
    }

    /// Retire a tensor's storage into the pool for future `alloc`s.
    ///
    /// Only recycle buffers that originated from this workspace (`alloc`/
    /// `tensor*`); feeding it foreign tensors grows the pool without bound.
    pub fn recycle(&mut self, t: Tensor) {
        self.pool.push(t.into_vec());
    }

    /// Retire a raw buffer into the pool.
    pub fn recycle_vec(&mut self, v: Vec<f32>) {
        self.pool.push(v);
    }

    /// Demote every keyed slot into the anonymous recycle pool.
    ///
    /// A shared workspace outlives the layer stack that keyed its slots:
    /// when a paged client is rebuilt, its layers mint fresh [`SlotId`]s,
    /// so the previous hydration's keyed buffers would sit dead in the map
    /// forever. Retiring them keeps the capacity available to `alloc`.
    /// Retired buffers are sorted by capacity so the pool's subsequent
    /// best-fit behaviour does not depend on hash-map iteration order.
    pub fn retire_slots(&mut self) {
        if self.slots.is_empty() {
            return;
        }
        let mut freed: Vec<Vec<f32>> = self.slots.drain().map(|(_, v)| v).collect();
        freed.sort_by_key(|v| v.capacity());
        self.pool.append(&mut freed);
    }

    /// Total f32 capacity parked in this workspace (free list plus keyed
    /// slots) — how "warm" the arena is for its next tenant.
    pub fn retained_capacity(&self) -> usize {
        self.pool.iter().map(|v| v.capacity()).sum::<usize>()
            + self.slots.values().map(|v| v.capacity()).sum::<usize>()
    }
}

/// Counters describing a [`WorkspacePool`]'s lifetime behaviour.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Total checkouts served (pool hits + fresh builds).
    pub checkouts: u64,
    /// Workspaces created because the free list was empty.
    pub created: u64,
    /// Workspaces currently checked out.
    pub resident: u64,
    /// Maximum simultaneously checked-out workspaces ever observed — the
    /// bound the paging scheduler's flat-memory claim is asserted against.
    pub high_water: u64,
}

/// A shared, thread-safe pool of [`Workspace`] arenas.
///
/// Cross-device-scale fleets cannot afford one arena per client: the pool
/// holds only as many workspaces as are ever simultaneously resident
/// (bounded by the paging scheduler's wave size), and each page-in checks
/// one out for the duration of the client's local work.
///
/// Checked-in workspaces keep their grown capacity, so after the first
/// wave the pool serves warm arenas and steady-state paging stops touching
/// the allocator. Contents are stale garbage by the same contract as
/// [`Workspace`] itself — numerics never read uninitialized scratch, which
/// is what makes pool assignment order irrelevant to results.
#[derive(Debug, Default)]
pub struct WorkspacePool {
    free: std::sync::Mutex<Vec<Workspace>>,
    checkouts: AtomicU64,
    created: AtomicU64,
    resident: AtomicU64,
    high_water: AtomicU64,
}

impl WorkspacePool {
    /// Empty pool; workspaces are created lazily on first checkout.
    pub fn new() -> Self {
        Self::default()
    }

    /// Take a workspace (the warmest one when available, otherwise fresh).
    pub fn checkout(&self) -> Workspace {
        let ws = {
            let mut free = self.free.lock().unwrap_or_else(|p| p.into_inner());
            // Prefer the arena with the most retained capacity so a cold
            // workspace checked in after a warm one cannot shadow it
            // (ties go to the most recently checked in).
            free.iter()
                .enumerate()
                .max_by_key(|(i, w)| (w.retained_capacity(), *i))
                .map(|(i, _)| i)
                .map(|i| free.swap_remove(i))
        };
        let ws = ws.unwrap_or_else(|| {
            self.created.fetch_add(1, Ordering::Relaxed);
            Workspace::new()
        });
        self.checkouts.fetch_add(1, Ordering::Relaxed);
        let now = self.resident.fetch_add(1, Ordering::Relaxed) + 1;
        self.high_water.fetch_max(now, Ordering::Relaxed);
        ws
    }

    /// Return a workspace to the free list, retiring its keyed slots so
    /// the next tenant (a freshly built layer stack with new [`SlotId`]s)
    /// can reuse the capacity anonymously.
    pub fn checkin(&self, mut ws: Workspace) {
        ws.retire_slots();
        self.resident.fetch_sub(1, Ordering::Relaxed);
        let mut free = self.free.lock().unwrap_or_else(|p| p.into_inner());
        free.push(ws);
    }

    /// Snapshot of the pool's counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            checkouts: self.checkouts.load(Ordering::Relaxed),
            created: self.created.load(Ordering::Relaxed),
            resident: self.resident.load(Ordering::Relaxed),
            high_water: self.high_water.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_ids_are_unique() {
        let a = SlotId::fresh();
        let b = SlotId::fresh();
        assert_ne!(a, b);
    }

    #[test]
    fn slot_persists_contents() {
        let mut ws = Workspace::new();
        let id = SlotId::fresh();
        let mut buf = ws.take_slot(id, 4);
        buf.copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        ws.put_slot(id, buf);
        let buf = ws.take_slot(id, 4);
        assert_eq!(buf, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn slot_is_grow_only_and_counts_reuse() {
        let mut ws = Workspace::new();
        let id = SlotId::fresh();
        let buf = ws.take_slot(id, 100);
        ws.put_slot(id, buf);
        assert_eq!(ws.stats().allocations, 1);
        let buf = ws.take_slot(id, 50); // shrink: reuse
        ws.put_slot(id, buf);
        let buf = ws.take_slot(id, 100); // back up within capacity: reuse
        ws.put_slot(id, buf);
        assert_eq!(ws.stats().allocations, 1);
        assert_eq!(ws.stats().reuses, 2);
        let buf = ws.take_slot(id, 200); // grow: allocation
        ws.put_slot(id, buf);
        assert_eq!(ws.stats().allocations, 2);
    }

    #[test]
    fn pool_recycles_buffers() {
        let mut ws = Workspace::new();
        let t = ws.tensor_zeroed([4, 4]);
        ws.recycle(t);
        let stats0 = ws.stats();
        let t = ws.tensor_zeroed([2, 8]); // same numel: must reuse
        assert_eq!(ws.stats().allocations, stats0.allocations);
        assert_eq!(ws.stats().reuses, stats0.reuses + 1);
        assert!(t.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn pool_best_fit_prefers_smallest_sufficient() {
        let mut ws = Workspace::new();
        let small = ws.alloc(10);
        let big = ws.alloc(1000);
        ws.recycle_vec(small);
        ws.recycle_vec(big);
        let got = ws.alloc(8);
        assert!(got.capacity() < 1000, "should pick the 10-cap buffer");
    }

    #[test]
    fn peak_bytes_tracks_high_water() {
        let mut ws = Workspace::new();
        let a = ws.alloc(256);
        ws.recycle_vec(a);
        let peak = ws.stats().peak_bytes;
        assert!(peak >= 256 * 4);
        let b = ws.alloc(100); // within capacity
        ws.recycle_vec(b);
        assert_eq!(ws.stats().peak_bytes, peak);
    }

    #[test]
    fn tensor_like_copies() {
        let mut ws = Workspace::new();
        let src = Tensor::from_vec([3], vec![1.0, 2.0, 3.0]);
        let t = ws.tensor_like(&src);
        assert_eq!(t.data(), src.data());
        assert_eq!(t.dims(), src.dims());
    }

    #[test]
    fn steady_state_allocates_nothing() {
        let mut ws = Workspace::new();
        let id = SlotId::fresh();
        for _ in 0..3 {
            let s = ws.take_slot(id, 64);
            ws.put_slot(id, s);
            let t = ws.tensor_zeroed([8, 8]);
            ws.recycle(t);
        }
        ws.reset_stats();
        for _ in 0..10 {
            let s = ws.take_slot(id, 64);
            ws.put_slot(id, s);
            let t = ws.tensor_zeroed([8, 8]);
            ws.recycle(t);
        }
        assert_eq!(ws.stats().allocations, 0);
        assert_eq!(ws.stats().reuses, 20);
    }

    #[test]
    fn retire_slots_moves_capacity_to_the_pool() {
        let mut ws = Workspace::new();
        let id = SlotId::fresh();
        let buf = ws.take_slot(id, 128);
        ws.put_slot(id, buf);
        ws.retire_slots();
        ws.reset_stats();
        // A fresh SlotId (a rebuilt layer) reuses the retired capacity.
        let buf = ws.take_slot(SlotId::fresh(), 64);
        assert_eq!(
            ws.stats().allocations,
            1,
            "take_slot always leaves the pool"
        );
        let anon = ws.alloc(100);
        assert_eq!(
            ws.stats().allocations,
            1,
            "anonymous alloc must reuse retired slot capacity"
        );
        ws.recycle_vec(anon);
        ws.put_slot(SlotId::fresh(), buf);
    }

    #[test]
    fn pool_checkout_checkin_reuses_and_tracks_high_water() {
        let pool = WorkspacePool::new();
        let mut a = pool.checkout();
        let b = pool.checkout();
        assert_eq!(pool.stats().resident, 2);
        assert_eq!(pool.stats().created, 2);
        // Warm up `a`, return both, and check the next tenant gets warmth.
        let t = a.tensor_zeroed([32, 32]);
        a.recycle(t);
        pool.checkin(a);
        pool.checkin(b);
        assert_eq!(pool.stats().resident, 0);
        assert_eq!(pool.stats().high_water, 2);
        let mut c = pool.checkout();
        assert_eq!(
            pool.stats().created,
            2,
            "free list must serve the third checkout"
        );
        c.reset_stats();
        let t = c.tensor_zeroed([32, 32]);
        assert_eq!(
            c.stats().allocations,
            0,
            "pooled workspace lost its capacity"
        );
        c.recycle(t);
        pool.checkin(c);
        assert_eq!(pool.stats().checkouts, 3);
        assert_eq!(
            pool.stats().high_water,
            2,
            "high water must not grow past peak"
        );
    }

    #[test]
    fn pool_checkin_retires_keyed_slots() {
        let pool = WorkspacePool::new();
        let mut ws = pool.checkout();
        let id = SlotId::fresh();
        let buf = ws.take_slot(id, 256);
        ws.put_slot(id, buf);
        pool.checkin(ws);
        let mut ws = pool.checkout();
        ws.reset_stats();
        let anon = ws.alloc(200);
        assert_eq!(
            ws.stats().allocations,
            0,
            "previous tenant's keyed slot capacity must be reusable"
        );
        ws.recycle_vec(anon);
        pool.checkin(ws);
    }
}
