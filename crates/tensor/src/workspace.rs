//! Reusable scratch-buffer arena threaded through forward/backward passes.
//!
//! Training touches the same layer stack thousands of times per client
//! (`clients × rounds × epochs × batches`), so per-call `Vec`/`Tensor`
//! allocations dominate the allocator. A [`Workspace`] amortizes them:
//!
//! * **Keyed slots** — persistent per-layer scratch (e.g. a convolution's
//!   im2col matrix) addressed by a [`SlotId`] minted once per layer
//!   instance. A slot survives between `take_slot`/`put_slot` pairs, so a
//!   forward pass can cache data in it and the matching backward pass can
//!   take it back without recomputing or cloning.
//! * **Recycle pool** — anonymous buffers for layer outputs and transient
//!   scratch. `alloc`/`tensor`/`tensor_zeroed` hand out the best-fitting
//!   retired buffer (grow-only: capacity is kept), and `recycle` returns a
//!   no-longer-needed tensor's storage to the pool.
//!
//! Buffers handed out by either path contain **stale garbage** unless
//! zeroed; callers must either fully overwrite them or request
//! [`Workspace::tensor_zeroed`]. This is load-bearing for determinism: the
//! GEMM kernels in [`crate::linalg`] accumulate into their output.
//!
//! [`Workspace::stats`] counts hand-outs that were served from existing
//! capacity (`reuses`) versus ones that had to touch the allocator
//! (`allocations`), so tests can assert a steady state allocates nothing.

use crate::{Shape, Tensor};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Stable identity of a persistent workspace slot.
///
/// Each layer instance mints its ids once at construction
/// ([`SlotId::fresh`]) and uses them for every subsequent call, so the
/// same buffer is rediscovered across batches, epochs, and rounds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SlotId(u64);

impl SlotId {
    /// Mint a process-unique slot id.
    pub fn fresh() -> Self {
        static NEXT: AtomicU64 = AtomicU64::new(1);
        SlotId(NEXT.fetch_add(1, Ordering::Relaxed))
    }
}

/// Allocation-behaviour counters for a [`Workspace`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkspaceStats {
    /// Hand-outs that required new heap capacity (fresh or grown buffer).
    pub allocations: u64,
    /// Hand-outs served entirely from already-owned capacity.
    pub reuses: u64,
    /// High-water mark of total f32 capacity owned by this workspace, in
    /// bytes (slots + pool + checked-out buffers).
    pub peak_bytes: u64,
}

/// Grow-only arena of reusable `f32` buffers. See the module docs.
///
/// A workspace is single-threaded by design (`&mut` threading); for
/// data-parallel regions, take one large buffer and `par_chunks_mut` it.
///
/// # Examples
///
/// Keyed-slot reuse — the second `take_slot` of the same [`SlotId`] hands
/// back the same storage with its contents intact, and the counters show
/// the steady state no longer touches the allocator:
///
/// ```
/// use fca_tensor::{SlotId, Workspace};
///
/// let mut ws = Workspace::new();
/// let id = SlotId::fresh();
///
/// let mut buf = ws.take_slot(id, 4); // first take: allocates
/// buf.copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
/// ws.put_slot(id, buf);
///
/// let buf = ws.take_slot(id, 4); // same storage, contents preserved
/// assert_eq!(buf, [1.0, 2.0, 3.0, 4.0]);
/// ws.put_slot(id, buf);
///
/// assert_eq!(ws.stats().allocations, 1);
/// assert_eq!(ws.stats().reuses, 1);
/// ```
///
/// Anonymous buffers flow through the recycle pool instead:
///
/// ```
/// use fca_tensor::Workspace;
///
/// let mut ws = Workspace::new();
/// let t = ws.tensor_zeroed([8, 8]);
/// ws.recycle(t); // retire the storage…
/// ws.reset_stats();
/// let _t2 = ws.tensor_zeroed([4, 16]); // …and the next request reuses it
/// assert_eq!(ws.stats().allocations, 0);
/// ```
#[derive(Debug, Default)]
pub struct Workspace {
    slots: HashMap<SlotId, Vec<f32>>,
    pool: Vec<Vec<f32>>,
    stats: WorkspaceStats,
    /// Total f32 capacity currently owned or checked out, in elements.
    live_elems: u64,
}

impl Workspace {
    /// Empty workspace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counters accumulated since construction (or the last [`Self::reset_stats`]).
    pub fn stats(&self) -> WorkspaceStats {
        self.stats
    }

    /// Zero the counters (capacity high-water mark included).
    pub fn reset_stats(&mut self) {
        self.stats = WorkspaceStats {
            peak_bytes: self.live_elems * 4,
            ..Default::default()
        };
    }

    fn note_capacity(&mut self, old_cap: usize, new_cap: usize) {
        if new_cap > old_cap {
            self.stats.allocations += 1;
            self.live_elems += (new_cap - old_cap) as u64;
            self.stats.peak_bytes = self.stats.peak_bytes.max(self.live_elems * 4);
        } else {
            self.stats.reuses += 1;
        }
    }

    /// Take the persistent buffer for `id`, resized to `len` (grow-only
    /// capacity). Contents beyond what the caller last wrote are
    /// unspecified. Pair with [`Self::put_slot`] to return it.
    pub fn take_slot(&mut self, id: SlotId, len: usize) -> Vec<f32> {
        let mut buf = self.slots.remove(&id).unwrap_or_default();
        let old_cap = buf.capacity();
        buf.resize(len, 0.0);
        self.note_capacity(old_cap, buf.capacity());
        buf
    }

    /// Return a slot buffer taken with [`Self::take_slot`]. The contents are
    /// preserved for the next `take_slot` of the same id.
    pub fn put_slot(&mut self, id: SlotId, buf: Vec<f32>) {
        self.slots.insert(id, buf);
    }

    /// Hand out an anonymous buffer of exactly `len` elements with
    /// **unspecified contents**, preferring the best-fitting retired buffer.
    pub fn alloc(&mut self, len: usize) -> Vec<f32> {
        // Best fit: smallest capacity >= len; else the largest (to grow).
        let mut best: Option<(usize, usize)> = None; // (index, capacity)
        for (i, b) in self.pool.iter().enumerate() {
            let cap = b.capacity();
            let fits = cap >= len;
            best = match best {
                None => Some((i, cap)),
                Some((_, bc)) if fits && (bc < len || cap < bc) => Some((i, cap)),
                Some((_, bc)) if !fits && bc < len && cap > bc => Some((i, cap)),
                keep => keep,
            };
        }
        let mut buf = match best {
            Some((i, _)) => self.pool.swap_remove(i),
            None => Vec::new(),
        };
        let old_cap = buf.capacity();
        buf.clear();
        buf.resize(len, 0.0);
        self.note_capacity(old_cap, buf.capacity());
        buf
    }

    /// Hand out a pair of anonymous buffers (e.g. GEMM packing scratch for
    /// the A and B operands) with **unspecified contents**. Equivalent to
    /// two [`Self::alloc`] calls; return both with [`Self::recycle_vec`] so
    /// the next GEMM in the step reuses them.
    pub fn alloc2(&mut self, len_a: usize, len_b: usize) -> (Vec<f32>, Vec<f32>) {
        let a = self.alloc(len_a);
        let b = self.alloc(len_b);
        (a, b)
    }

    /// An output tensor of `shape` with **unspecified contents** — the
    /// caller must fully overwrite every element.
    pub fn tensor(&mut self, shape: impl Into<Shape>) -> Tensor {
        let shape = shape.into();
        let buf = self.alloc(shape.numel());
        Tensor::from_vec(shape, buf)
    }

    /// An output tensor of `shape`, zero-filled (required before any
    /// accumulating kernel such as the GEMMs or `col2im`).
    pub fn tensor_zeroed(&mut self, shape: impl Into<Shape>) -> Tensor {
        let mut t = self.tensor(shape);
        t.data_mut().fill(0.0);
        t
    }

    /// A tensor with the same shape and contents as `src`, storage drawn
    /// from the pool.
    pub fn tensor_like(&mut self, src: &Tensor) -> Tensor {
        let mut t = self.tensor(src.shape().clone());
        t.data_mut().copy_from_slice(src.data());
        t
    }

    /// Retire a tensor's storage into the pool for future `alloc`s.
    ///
    /// Only recycle buffers that originated from this workspace (`alloc`/
    /// `tensor*`); feeding it foreign tensors grows the pool without bound.
    pub fn recycle(&mut self, t: Tensor) {
        self.pool.push(t.into_vec());
    }

    /// Retire a raw buffer into the pool.
    pub fn recycle_vec(&mut self, v: Vec<f32>) {
        self.pool.push(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_ids_are_unique() {
        let a = SlotId::fresh();
        let b = SlotId::fresh();
        assert_ne!(a, b);
    }

    #[test]
    fn slot_persists_contents() {
        let mut ws = Workspace::new();
        let id = SlotId::fresh();
        let mut buf = ws.take_slot(id, 4);
        buf.copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        ws.put_slot(id, buf);
        let buf = ws.take_slot(id, 4);
        assert_eq!(buf, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn slot_is_grow_only_and_counts_reuse() {
        let mut ws = Workspace::new();
        let id = SlotId::fresh();
        let buf = ws.take_slot(id, 100);
        ws.put_slot(id, buf);
        assert_eq!(ws.stats().allocations, 1);
        let buf = ws.take_slot(id, 50); // shrink: reuse
        ws.put_slot(id, buf);
        let buf = ws.take_slot(id, 100); // back up within capacity: reuse
        ws.put_slot(id, buf);
        assert_eq!(ws.stats().allocations, 1);
        assert_eq!(ws.stats().reuses, 2);
        let buf = ws.take_slot(id, 200); // grow: allocation
        ws.put_slot(id, buf);
        assert_eq!(ws.stats().allocations, 2);
    }

    #[test]
    fn pool_recycles_buffers() {
        let mut ws = Workspace::new();
        let t = ws.tensor_zeroed([4, 4]);
        ws.recycle(t);
        let stats0 = ws.stats();
        let t = ws.tensor_zeroed([2, 8]); // same numel: must reuse
        assert_eq!(ws.stats().allocations, stats0.allocations);
        assert_eq!(ws.stats().reuses, stats0.reuses + 1);
        assert!(t.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn pool_best_fit_prefers_smallest_sufficient() {
        let mut ws = Workspace::new();
        let small = ws.alloc(10);
        let big = ws.alloc(1000);
        ws.recycle_vec(small);
        ws.recycle_vec(big);
        let got = ws.alloc(8);
        assert!(got.capacity() < 1000, "should pick the 10-cap buffer");
    }

    #[test]
    fn peak_bytes_tracks_high_water() {
        let mut ws = Workspace::new();
        let a = ws.alloc(256);
        ws.recycle_vec(a);
        let peak = ws.stats().peak_bytes;
        assert!(peak >= 256 * 4);
        let b = ws.alloc(100); // within capacity
        ws.recycle_vec(b);
        assert_eq!(ws.stats().peak_bytes, peak);
    }

    #[test]
    fn tensor_like_copies() {
        let mut ws = Workspace::new();
        let src = Tensor::from_vec([3], vec![1.0, 2.0, 3.0]);
        let t = ws.tensor_like(&src);
        assert_eq!(t.data(), src.data());
        assert_eq!(t.dims(), src.dims());
    }

    #[test]
    fn steady_state_allocates_nothing() {
        let mut ws = Workspace::new();
        let id = SlotId::fresh();
        for _ in 0..3 {
            let s = ws.take_slot(id, 64);
            ws.put_slot(id, s);
            let t = ws.tensor_zeroed([8, 8]);
            ws.recycle(t);
        }
        ws.reset_stats();
        for _ in 0..10 {
            let s = ws.take_slot(id, 64);
            ws.put_slot(id, s);
            let t = ws.tensor_zeroed([8, 8]);
            ws.recycle(t);
        }
        assert_eq!(ws.stats().allocations, 0);
        assert_eq!(ws.stats().reuses, 20);
    }
}
