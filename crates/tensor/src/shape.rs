//! Tensor shapes: a thin wrapper over a small dimension vector with
//! row-major stride math.

use std::fmt;

/// The shape of a tensor: an ordered list of dimension extents.
///
/// Shapes are row-major ("C order"): the last dimension is contiguous in
/// memory. Rank 0 (scalar) through rank 4 (NCHW image batches) are used in
/// practice; higher ranks are permitted but untested.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Shape(pub(crate) Vec<usize>);

impl Shape {
    /// Create a shape from dimension extents.
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Dimension extents as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Extent of dimension `i`. Panics if out of range.
    pub fn dim(&self, i: usize) -> usize {
        self.0[i]
    }

    /// Total number of elements (product of extents; 1 for scalars).
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Row-major strides, in elements.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Interpret as a matrix `(rows, cols)`. Panics unless rank == 2.
    pub fn as_matrix(&self) -> (usize, usize) {
        assert_eq!(self.rank(), 2, "expected rank-2 shape, got {self}");
        (self.0[0], self.0[1])
    }

    /// Interpret as an NCHW batch `(n, c, h, w)`. Panics unless rank == 4.
    pub fn as_nchw(&self) -> (usize, usize, usize, usize) {
        assert_eq!(self.rank(), 4, "expected rank-4 shape, got {self}");
        (self.0[0], self.0[1], self.0[2], self.0[3])
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.0)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape(dims.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_rank() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.numel(), 24);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::new(&[]);
        assert_eq!(s.rank(), 0);
        assert_eq!(s.numel(), 1);
        assert!(s.strides().is_empty());
    }

    #[test]
    fn row_major_strides() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
    }

    #[test]
    fn matrix_view() {
        assert_eq!(Shape::new(&[5, 7]).as_matrix(), (5, 7));
    }

    #[test]
    #[should_panic(expected = "rank-2")]
    fn matrix_view_rejects_rank3() {
        Shape::new(&[5, 7, 2]).as_matrix();
    }

    #[test]
    fn nchw_view() {
        assert_eq!(Shape::new(&[8, 3, 32, 32]).as_nchw(), (8, 3, 32, 32));
    }

    #[test]
    fn from_array() {
        let s: Shape = [4, 4].into();
        assert_eq!(s.dims(), &[4, 4]);
    }
}
