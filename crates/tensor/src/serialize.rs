//! Wire serialization for tensors.
//!
//! The FL communication layer measures *actual serialized bytes* per round
//! (paper Table 5), so tensors get a compact little-endian wire format:
//!
//! ```text
//! u8 rank | rank × u32 dims | numel × f32 data
//! ```

use crate::shape::Shape;
use crate::tensor::Tensor;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Errors produced while decoding a tensor (or a tensor-carrying message)
/// from the wire.
#[derive(Debug, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the declared payload was complete.
    Truncated,
    /// The declared shape is implausibly large (corruption guard).
    ShapeTooLarge,
    /// The message tag byte names no known message type.
    UnknownTag(u8),
    /// The tagged message type carries a fixed tensor count and the header
    /// declared a different one.
    CountMismatch {
        /// Tensor count the tag requires.
        expected: usize,
        /// Tensor count the header declared.
        got: usize,
    },
    /// The peer's channel is closed: the process on the other side is
    /// gone (crashed client, shut-down server). Transport-level rather
    /// than decode-level, but surfaced through the same error type so
    /// send paths stay panic-free.
    ChannelClosed,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "wire buffer truncated"),
            WireError::ShapeTooLarge => write!(f, "declared tensor shape too large"),
            WireError::UnknownTag(tag) => write!(f, "unknown wire message tag {tag}"),
            WireError::CountMismatch { expected, got } => {
                write!(
                    f,
                    "wire message declares {got} tensors, tag requires {expected}"
                )
            }
            WireError::ChannelClosed => write!(f, "peer channel closed"),
        }
    }
}

impl std::error::Error for WireError {}

/// Maximum element count accepted by the decoder (guards against
/// corrupted length prefixes allocating unbounded memory).
const MAX_WIRE_NUMEL: usize = 1 << 28;

/// Number of bytes [`encode_tensor`] will produce for this tensor.
pub fn encoded_len(t: &Tensor) -> usize {
    1 + 4 * t.shape().rank() + 4 * t.numel()
}

/// Append the tensor's wire encoding to `buf`.
pub fn encode_tensor(t: &Tensor, buf: &mut BytesMut) {
    buf.reserve(encoded_len(t));
    buf.put_u8(t.shape().rank() as u8);
    for &d in t.dims() {
        buf.put_u32_le(d as u32);
    }
    for &v in t.data() {
        buf.put_f32_le(v);
    }
}

/// Encode a tensor into a standalone buffer.
pub fn to_bytes(t: &Tensor) -> Bytes {
    let mut buf = BytesMut::with_capacity(encoded_len(t));
    encode_tensor(t, &mut buf);
    buf.freeze()
}

/// Decode one tensor from the front of `buf`, advancing it.
pub fn decode_tensor(buf: &mut Bytes) -> Result<Tensor, WireError> {
    if buf.remaining() < 1 {
        return Err(WireError::Truncated);
    }
    let rank = buf.get_u8() as usize;
    if buf.remaining() < 4 * rank {
        return Err(WireError::Truncated);
    }
    let mut dims = Vec::with_capacity(rank);
    for _ in 0..rank {
        dims.push(buf.get_u32_le() as usize);
    }
    let shape = Shape::new(&dims);
    let numel = shape.numel();
    if numel > MAX_WIRE_NUMEL {
        return Err(WireError::ShapeTooLarge);
    }
    if buf.remaining() < 4 * numel {
        return Err(WireError::Truncated);
    }
    let mut data = Vec::with_capacity(numel);
    for _ in 0..numel {
        data.push(buf.get_f32_le());
    }
    Ok(Tensor::from_vec(shape, data))
}

// --------------------------------------------------------------------
// Half-precision (IEEE 754 binary16) wire variant.
//
// FedClassAvg's selling point is communication efficiency; halving the
// payload with f16 is the natural next step the paper's §5.4 cost model
// invites. Conversion is implemented in-repo (no `half` dependency) and
// is exact for zeros/infinities, round-to-nearest-even otherwise.
// --------------------------------------------------------------------

/// Convert an `f32` to IEEE binary16 bits (round-to-nearest-even,
/// overflow to ±inf, flush of sub-subnormals to ±0).
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let mant = bits & 0x007F_FFFF;

    if exp == 0xFF {
        // Inf / NaN.
        return sign | 0x7C00 | if mant != 0 { 0x0200 } else { 0 };
    }
    // Re-bias: f32 exp-127, f16 exp-15.
    let unbiased = exp - 127;
    if unbiased > 15 {
        return sign | 0x7C00; // overflow → inf
    }
    if unbiased >= -14 {
        // Normal f16: keep 10 mantissa bits with round-to-nearest-even.
        let exp16 = (unbiased + 15) as u32;
        let mant16 = mant >> 13;
        let round_bit = (mant >> 12) & 1;
        let sticky = mant & 0x0FFF;
        let mut out = ((exp16 << 10) | mant16) as u16;
        if round_bit == 1 && (sticky != 0 || (mant16 & 1) == 1) {
            out += 1; // may carry into the exponent — that is correct
        }
        sign | out
    } else if unbiased >= -24 {
        // Subnormal f16: value = mant16 · 2⁻²⁴, so the 24-bit significand
        // (implicit bit included) shifts right by −unbiased−1 ∈ 14..=23.
        let shift = (-1 - unbiased) as u32;
        let full = mant | 0x0080_0000;
        let mant16 = full >> shift;
        let round_bit = (full >> (shift - 1)) & 1;
        let sticky = full & ((1 << (shift - 1)) - 1);
        let mut out = mant16 as u16;
        if round_bit == 1 && (sticky != 0 || (out & 1) == 1) {
            out += 1;
        }
        sign | out
    } else {
        sign // underflow → ±0
    }
}

/// Convert IEEE binary16 bits back to `f32` (exact).
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h as u32) & 0x8000) << 16;
    let exp = ((h >> 10) & 0x1F) as u32;
    let mant = (h & 0x03FF) as u32;
    let bits = if exp == 0x1F {
        sign | 0x7F80_0000 | (mant << 13)
    } else if exp == 0 {
        if mant == 0 {
            sign
        } else {
            // Subnormal: value = mant·2⁻²⁴; normalize so bit 10 is the
            // implicit leading one, giving exponent −14−k for k shifts.
            let mut k = 0i32;
            let mut m = mant;
            while m & 0x0400 == 0 {
                m <<= 1;
                k += 1;
            }
            let exp32 = (127 - 14 - k) as u32;
            sign | (exp32 << 23) | ((m & 0x03FF) << 13)
        }
    } else {
        sign | ((exp + 127 - 15) << 23) | (mant << 13)
    };
    f32::from_bits(bits)
}

/// Bytes [`encode_tensor_f16`] will produce.
pub fn encoded_len_f16(t: &Tensor) -> usize {
    1 + 4 * t.shape().rank() + 2 * t.numel()
}

/// Append the tensor's half-precision wire encoding to `buf` (same
/// header as the f32 format; the caller's framing distinguishes them).
pub fn encode_tensor_f16(t: &Tensor, buf: &mut BytesMut) {
    buf.reserve(encoded_len_f16(t));
    buf.put_u8(t.shape().rank() as u8);
    for &d in t.dims() {
        buf.put_u32_le(d as u32);
    }
    for &v in t.data() {
        buf.put_u16_le(f32_to_f16_bits(v));
    }
}

/// Decode one half-precision tensor from the front of `buf`.
pub fn decode_tensor_f16(buf: &mut Bytes) -> Result<Tensor, WireError> {
    if buf.remaining() < 1 {
        return Err(WireError::Truncated);
    }
    let rank = buf.get_u8() as usize;
    if buf.remaining() < 4 * rank {
        return Err(WireError::Truncated);
    }
    let mut dims = Vec::with_capacity(rank);
    for _ in 0..rank {
        dims.push(buf.get_u32_le() as usize);
    }
    let shape = Shape::new(&dims);
    let numel = shape.numel();
    if numel > MAX_WIRE_NUMEL {
        return Err(WireError::ShapeTooLarge);
    }
    if buf.remaining() < 2 * numel {
        return Err(WireError::Truncated);
    }
    let mut data = Vec::with_capacity(numel);
    for _ in 0..numel {
        data.push(f16_bits_to_f32(buf.get_u16_le()));
    }
    Ok(Tensor::from_vec(shape, data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    #[test]
    fn roundtrip_preserves_tensor() {
        let mut rng = seeded_rng(31);
        for dims in [vec![], vec![7], vec![3, 4], vec![2, 3, 4, 5]] {
            let t = Tensor::randn(Shape::new(&dims), 1.0, &mut rng);
            let mut wire = to_bytes(&t);
            let back = decode_tensor(&mut wire).unwrap();
            assert_eq!(t, back);
            assert_eq!(wire.remaining(), 0);
        }
    }

    #[test]
    fn encoded_len_is_exact() {
        let t = Tensor::zeros([4, 6]);
        assert_eq!(to_bytes(&t).len(), encoded_len(&t));
        assert_eq!(encoded_len(&t), 1 + 8 + 4 * 24);
    }

    #[test]
    fn truncated_buffer_errors() {
        let t = Tensor::zeros([4, 4]);
        let full = to_bytes(&t);
        let mut cut = full.slice(0..full.len() - 3);
        assert_eq!(decode_tensor(&mut cut), Err(WireError::Truncated));
    }

    #[test]
    fn empty_buffer_errors() {
        let mut empty = Bytes::new();
        assert_eq!(decode_tensor(&mut empty), Err(WireError::Truncated));
    }

    #[test]
    fn oversized_shape_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(2);
        buf.put_u32_le(u32::MAX);
        buf.put_u32_le(u32::MAX);
        let mut wire = buf.freeze();
        assert_eq!(decode_tensor(&mut wire), Err(WireError::ShapeTooLarge));
    }

    #[test]
    fn f16_roundtrip_exact_values() {
        // Values exactly representable in binary16 survive unchanged.
        for v in [0.0f32, -0.0, 1.0, -1.0, 0.5, 2.0, 65504.0, -65504.0, 0.25] {
            let back = f16_bits_to_f32(f32_to_f16_bits(v));
            assert_eq!(back, v, "f16 roundtrip of {v}");
        }
        assert!(f16_bits_to_f32(f32_to_f16_bits(f32::INFINITY)).is_infinite());
        assert!(f16_bits_to_f32(f32_to_f16_bits(f32::NAN)).is_nan());
    }

    #[test]
    fn f16_relative_error_bounded() {
        let mut rng = seeded_rng(37);
        let t = Tensor::randn([64, 8], 1.0, &mut rng);
        for &v in t.data() {
            let back = f16_bits_to_f32(f32_to_f16_bits(v));
            // binary16 has 11 significand bits → rel. error ≤ 2^-11.
            assert!(
                (back - v).abs() <= v.abs() * f32::powi(2.0, -11) + 1e-7,
                "{v} → {back}"
            );
        }
    }

    #[test]
    fn f16_overflow_saturates_to_infinity() {
        assert!(f16_bits_to_f32(f32_to_f16_bits(1e6)).is_infinite());
        assert!(f16_bits_to_f32(f32_to_f16_bits(-1e6)).is_infinite());
    }

    #[test]
    fn f16_subnormals_roundtrip() {
        // Smallest positive f16 subnormal is 2^-24.
        let tiny = f32::powi(2.0, -24);
        let back = f16_bits_to_f32(f32_to_f16_bits(tiny));
        assert_eq!(back, tiny);
        // Below half of it, flush to zero.
        let below = f32::powi(2.0, -26);
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(below)), 0.0);
    }

    #[test]
    fn f16_tensor_roundtrip_and_size() {
        let mut rng = seeded_rng(38);
        let t = Tensor::randn([10, 6], 1.0, &mut rng);
        let mut buf = BytesMut::new();
        encode_tensor_f16(&t, &mut buf);
        assert_eq!(buf.len(), encoded_len_f16(&t));
        // Half the payload bytes of the f32 format (same 9-byte header).
        assert_eq!(encoded_len(&t) - encoded_len_f16(&t), 2 * t.numel());
        let mut wire = buf.freeze();
        let back = decode_tensor_f16(&mut wire).expect("decode");
        assert_eq!(back.dims(), t.dims());
        for (a, b) in back.data().iter().zip(t.data()) {
            assert!((a - b).abs() <= b.abs() * 1e-3 + 1e-6);
        }
    }

    #[test]
    fn f16_truncated_errors() {
        let t = Tensor::zeros([4]);
        let mut buf = BytesMut::new();
        encode_tensor_f16(&t, &mut buf);
        let full = buf.freeze();
        let mut cut = full.slice(0..full.len() - 1);
        assert_eq!(decode_tensor_f16(&mut cut), Err(WireError::Truncated));
    }

    #[test]
    fn multiple_tensors_stream() {
        let a = Tensor::from_vec([2], vec![1.0, 2.0]);
        let b = Tensor::from_vec([1, 2], vec![3.0, 4.0]);
        let mut buf = BytesMut::new();
        encode_tensor(&a, &mut buf);
        encode_tensor(&b, &mut buf);
        let mut wire = buf.freeze();
        assert_eq!(decode_tensor(&mut wire).unwrap(), a);
        assert_eq!(decode_tensor(&mut wire).unwrap(), b);
    }
}
